package spectre

import (
	"fmt"
	"strings"

	"pitchfork/internal/core"
	"pitchfork/internal/isa"
	"pitchfork/internal/mem"
	"pitchfork/internal/pitchfork"
	"pitchfork/internal/symx"
)

// Word is a machine word: a data value or data address.
type Word = uint64

// Addr is a program point. The paper draws program points and data
// addresses from the same value domain.
type Addr = uint64

// Reg names a register of the abstract machine.
type Reg uint16

// Conventional registers of the call/return expansion: RSP is the
// stack pointer, RTMP the scratch register return addresses pass
// through.
const (
	RSP  Reg = Reg(mem.RSP)
	RTMP Reg = Reg(mem.RTMP)
)

// Opcode identifies an arithmetic or boolean operator of the abstract
// ISA. All operators are total: division and remainder by zero yield
// zero, shift counts are taken modulo 64.
type Opcode uint8

// The operator set. Comparisons yield 0/1 words; OpSelect is the
// constant-time selection FaCT-style code relies on.
const (
	OpAdd    = Opcode(isa.OpAdd)
	OpSub    = Opcode(isa.OpSub)
	OpMul    = Opcode(isa.OpMul)
	OpDiv    = Opcode(isa.OpDiv)
	OpMod    = Opcode(isa.OpMod)
	OpAnd    = Opcode(isa.OpAnd)
	OpOr     = Opcode(isa.OpOr)
	OpXor    = Opcode(isa.OpXor)
	OpShl    = Opcode(isa.OpShl)
	OpShr    = Opcode(isa.OpShr)
	OpSar    = Opcode(isa.OpSar)
	OpNot    = Opcode(isa.OpNot)
	OpNeg    = Opcode(isa.OpNeg)
	OpMov    = Opcode(isa.OpMov)
	OpEq     = Opcode(isa.OpEq)
	OpNe     = Opcode(isa.OpNe)
	OpLt     = Opcode(isa.OpLt)
	OpLe     = Opcode(isa.OpLe)
	OpGt     = Opcode(isa.OpGt)
	OpGe     = Opcode(isa.OpGe)
	OpSlt    = Opcode(isa.OpSlt)
	OpSle    = Opcode(isa.OpSle)
	OpSgt    = Opcode(isa.OpSgt)
	OpSge    = Opcode(isa.OpSge)
	OpSelect = Opcode(isa.OpSelect)
)

// String returns the opcode mnemonic.
func (op Opcode) String() string { return isa.Opcode(op).String() }

// Operand is a register-or-immediate operand.
type Operand struct {
	o isa.Operand
}

// R returns a register operand.
func R(r Reg) Operand { return Operand{o: isa.R(mem.Reg(r))} }

// Imm returns a public immediate operand.
func Imm(w Word) Operand { return Operand{o: isa.ImmW(w)} }

// SecretImm returns a secret-labeled immediate operand.
func SecretImm(w Word) Operand { return Operand{o: isa.Imm(mem.Sec(w))} }

// String renders the operand in assembly syntax.
func (o Operand) String() string { return o.o.String() }

func lower(args []Operand) []isa.Operand {
	out := make([]isa.Operand, len(args))
	for i, a := range args {
		out[i] = a.o
	}
	return out
}

// Program is an analyzable unit: the instructions and data image, the
// initial register file, and (for symbolic analysis) the symbolic
// input bindings. Programs are built with ProgramBuilder or compiled
// from CTL source with CompileCTL.
type Program struct {
	prog    *isa.Program
	regs    map[mem.Reg]mem.Value
	symRegs map[mem.Reg]symx.Expr
	symMem  map[mem.Word]symx.Expr
	globals map[string]Word // CTL global variables → data addresses
	funcs   map[string]Addr // CTL functions → entry points
}

// Len returns the number of instructions.
func (p *Program) Len() int { return p.prog.Len() }

// Entry returns the entry program point.
func (p *Program) Entry() Addr { return p.prog.Entry }

// Lookup resolves a symbolic name: a name bound with
// ProgramBuilder.Define, a CTL global variable's data address, or a
// CTL function's entry point.
func (p *Program) Lookup(name string) (Addr, bool) {
	if a, ok := p.globals[name]; ok {
		return a, true
	}
	if a, ok := p.funcs[name]; ok {
		return a, true
	}
	return p.prog.Lookup(name)
}

// Globals returns the CTL global-variable data addresses (empty for
// builder-assembled programs).
func (p *Program) Globals() map[string]Word {
	out := make(map[string]Word, len(p.globals))
	for k, v := range p.globals {
		out[k] = v
	}
	return out
}

// Disassemble renders the program in the paper's instruction notation,
// one program point per line.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for _, n := range p.prog.Points() {
		in, _ := p.prog.At(n)
		fmt.Fprintf(&b, "%4d: %s\n", n, in)
	}
	return b.String()
}

// machine builds a fresh concrete machine in the program's initial
// configuration.
func (p *Program) machine() *core.Machine {
	m := core.New(p.prog)
	for r, v := range p.regs {
		m.Regs.Write(r, v)
	}
	return m
}

// symMachine builds a fresh symbolic initial configuration: concrete
// register and memory seeds become constant expressions, symbolic
// bindings become solver variables.
func (p *Program) symMachine() *pitchfork.SymMachine {
	sm := pitchfork.NewSym(p.prog)
	for r, v := range p.regs {
		sm.SetReg(r, symx.C(v))
	}
	for r, e := range p.symRegs {
		sm.SetReg(r, e)
	}
	for a, e := range p.symMem {
		sm.SetMem(a, e)
	}
	return sm
}

// ProgramBuilder assembles a Program sequentially: instructions land
// on consecutive program points starting at the entry, with
// fall-through successors filled in automatically — matching how the
// paper's figures number their programs 1, 2, 3, …. All methods
// return the builder for chaining.
type ProgramBuilder struct {
	b       *isa.Builder
	regs    map[mem.Reg]mem.Value
	symRegs map[mem.Reg]symx.Expr
	symMem  map[mem.Word]symx.Expr
}

// NewProgramBuilder starts a builder whose first instruction lands on
// program point 1, like the figures.
func NewProgramBuilder() *ProgramBuilder { return NewProgramBuilderAt(1) }

// NewProgramBuilderAt starts a builder whose first instruction lands
// on entry.
func NewProgramBuilderAt(entry Addr) *ProgramBuilder {
	return &ProgramBuilder{
		b:       isa.NewBuilder(entry),
		regs:    make(map[mem.Reg]mem.Value),
		symRegs: make(map[mem.Reg]symx.Expr),
		symMem:  make(map[mem.Word]symx.Expr),
	}
}

// Here returns the program point the next appended instruction will
// occupy; useful for computing branch targets.
func (pb *ProgramBuilder) Here() Addr { return pb.b.Here() }

// Skip reserves count program points, leaving them as halt points.
func (pb *ProgramBuilder) Skip(count Addr) *ProgramBuilder {
	pb.b.Skip(count)
	return pb
}

// Op appends (dst = op(args…)) falling through to the next point.
func (pb *ProgramBuilder) Op(dst Reg, op Opcode, args ...Operand) *ProgramBuilder {
	pb.b.Op(mem.Reg(dst), isa.Opcode(op), lower(args)...)
	return pb
}

// Load appends (dst = load(args…)); the address is the sum of the
// operands, so Load(r, Imm(0x40), R(x)) reads address 0x40+x.
func (pb *ProgramBuilder) Load(dst Reg, args ...Operand) *ProgramBuilder {
	pb.b.Load(mem.Reg(dst), lower(args)...)
	return pb
}

// Store appends store(src, args…) with the summed address.
func (pb *ProgramBuilder) Store(src Operand, args ...Operand) *ProgramBuilder {
	pb.b.Store(src.o, lower(args)...)
	return pb
}

// Br appends br(op, args, ntrue, nfalse): if op over args is nonzero,
// control continues at ntrue, else at nfalse.
func (pb *ProgramBuilder) Br(op Opcode, args []Operand, ntrue, nfalse Addr) *ProgramBuilder {
	pb.b.Br(isa.Opcode(op), lower(args), ntrue, nfalse)
	return pb
}

// Jmpi appends an indirect jump to the summed operand address.
func (pb *ProgramBuilder) Jmpi(args ...Operand) *ProgramBuilder {
	pb.b.Jmpi(lower(args)...)
	return pb
}

// Call appends call(callee) returning to the following point.
func (pb *ProgramBuilder) Call(callee Addr) *ProgramBuilder {
	pb.b.Call(callee)
	return pb
}

// Ret appends ret.
func (pb *ProgramBuilder) Ret() *ProgramBuilder {
	pb.b.Ret()
	return pb
}

// Fence appends a speculation fence falling through.
func (pb *ProgramBuilder) Fence() *ProgramBuilder {
	pb.b.Fence()
	return pb
}

// Define binds a symbolic name to a program point or data address.
func (pb *ProgramBuilder) Define(name string, a Addr) *ProgramBuilder {
	pb.b.Define(name, a)
	return pb
}

// Public seeds consecutive public data words starting at base.
func (pb *ProgramBuilder) Public(base Word, words ...Word) *ProgramBuilder {
	vs := make([]mem.Value, len(words))
	for i, w := range words {
		vs[i] = mem.Pub(w)
	}
	pb.b.Region(base, vs...)
	return pb
}

// Secret seeds consecutive secret-labeled data words starting at base
// — the data whose observation the analyzer flags.
func (pb *ProgramBuilder) Secret(base Word, words ...Word) *ProgramBuilder {
	vs := make([]mem.Value, len(words))
	for i, w := range words {
		vs[i] = mem.Sec(w)
	}
	pb.b.Region(base, vs...)
	return pb
}

// SetReg seeds the initial register file with a public word — e.g. an
// attacker-chosen input.
func (pb *ProgramBuilder) SetReg(r Reg, w Word) *ProgramBuilder {
	pb.regs[mem.Reg(r)] = mem.Pub(w)
	return pb
}

// SetSecretReg seeds the initial register file with a secret word.
func (pb *ProgramBuilder) SetSecretReg(r Reg, w Word) *ProgramBuilder {
	pb.regs[mem.Reg(r)] = mem.Sec(w)
	return pb
}

// SymbolicReg binds a register to an unconstrained public symbolic
// input (an attacker-controlled value) for symbolic analysis. The name
// identifies the variable in Finding.Witness.
func (pb *ProgramBuilder) SymbolicReg(r Reg, name string) *ProgramBuilder {
	pb.symRegs[mem.Reg(r)] = symx.NewVar(name, mem.Public)
	return pb
}

// SymbolicSecretReg binds a register to a symbolic secret.
func (pb *ProgramBuilder) SymbolicSecretReg(r Reg, name string) *ProgramBuilder {
	pb.symRegs[mem.Reg(r)] = symx.NewVar(name, mem.Secret)
	return pb
}

// SymbolicMem binds a memory cell to an unconstrained public symbolic
// input.
func (pb *ProgramBuilder) SymbolicMem(a Word, name string) *ProgramBuilder {
	pb.symMem[a] = symx.NewVar(name, mem.Public)
	return pb
}

// SymbolicSecretMem binds a memory cell to a symbolic secret.
func (pb *ProgramBuilder) SymbolicSecretMem(a Word, name string) *ProgramBuilder {
	pb.symMem[a] = symx.NewVar(name, mem.Secret)
	return pb
}

// Build validates the program and returns it. The returned Program is
// independent of the builder: later builder mutations do not affect
// it.
func (pb *ProgramBuilder) Build() (*Program, error) {
	prog, err := pb.b.Build()
	if err != nil {
		return nil, fmt.Errorf("spectre: %w", err)
	}
	regs := make(map[mem.Reg]mem.Value, len(pb.regs))
	for r, v := range pb.regs {
		regs[r] = v
	}
	symRegs := make(map[mem.Reg]symx.Expr, len(pb.symRegs))
	for r, e := range pb.symRegs {
		symRegs[r] = e
	}
	symMem := make(map[mem.Word]symx.Expr, len(pb.symMem))
	for a, e := range pb.symMem {
		symMem[a] = e
	}
	return &Program{
		prog:    prog.Clone(),
		regs:    regs,
		symRegs: symRegs,
		symMem:  symMem,
	}, nil
}

// MustBuild is Build that panics on a malformed program; for examples
// and fixtures.
func (pb *ProgramBuilder) MustBuild() *Program {
	p, err := pb.Build()
	if err != nil {
		panic(err)
	}
	return p
}
