package spectre_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pitchfork/spectre"
)

// safeProgram is the Figure 1 control-flow shape with no secrets
// anywhere — the case the static pass can certify without exploring.
func safeProgram() *spectre.Program {
	return spectre.NewProgramBuilder().
		Br(spectre.OpGt, []spectre.Operand{spectre.Imm(4), spectre.R(ra)}, 2, 4).
		Load(rb, spectre.Imm(0x40), spectre.R(ra)).
		Load(rc, spectre.Imm(0x44), spectre.R(rb)).
		Public(0x40, 1, 2, 3, 4).
		Public(0x44, 5, 6, 7, 8).
		SetReg(ra, 9).
		MustBuild()
}

// TestStaticPassCertifiesWithoutExploring: a secret-free program under
// WithStaticPass returns the O(|program|) certificate — mode "static",
// zero explored states, an empty (but present) findings list, and the
// static verdict on the wire.
func TestStaticPassCertifiesWithoutExploring(t *testing.T) {
	rep, err := mustNew(t, spectre.WithBound(20), spectre.WithStaticPass(true)).
		Run(context.Background(), safeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != spectre.ModeStatic {
		t.Errorf("mode = %q, want %q", rep.Mode, spectre.ModeStatic)
	}
	if !rep.SecretFree {
		t.Error("certified program must report secret-free")
	}
	if rep.Findings == nil || len(rep.Findings) != 0 {
		t.Errorf("findings must be present and empty, got %#v", rep.Findings)
	}
	if rep.States != 0 || rep.Paths != 0 {
		t.Errorf("explorer must not run: %d states, %d paths", rep.States, rep.Paths)
	}
	if rep.Static == nil || !rep.Static.Safe {
		t.Fatalf("static verdict missing or not safe: %+v", rep.Static)
	}
	if len(rep.Static.Suspicious) != 0 {
		t.Errorf("safe verdict with suspicious points: %v", rep.Static.Suspicious)
	}

	// The same program without the pass explores and agrees.
	plain, err := mustNew(t, spectre.WithBound(20)).Run(context.Background(), safeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if !plain.SecretFree {
		t.Error("explorer disagrees with the static certificate")
	}
	if plain.Static != nil {
		t.Error("static verdict must be absent when the pass is off")
	}
}

// TestStaticPassHybridFindingsUnchanged: on a leaky program the pass
// falls through to hybrid exploration — findings identical to a plain
// run, with the static verdict attached.
func TestStaticPassHybridFindingsUnchanged(t *testing.T) {
	hybrid, err := mustNew(t, spectre.WithBound(20), spectre.WithStopAtFirst(false),
		spectre.WithStaticPass(true)).Run(context.Background(), v1Program(9))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := mustNew(t, spectre.WithBound(20), spectre.WithStopAtFirst(false)).
		Run(context.Background(), v1Program(9))
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.Mode != spectre.ModeConcrete {
		t.Errorf("hybrid run must stay in explorer mode, got %q", hybrid.Mode)
	}
	if !reflect.DeepEqual(hybrid.Findings, plain.Findings) {
		t.Errorf("hybrid findings differ from plain:\n hybrid %v\n plain  %v", hybrid.Findings, plain.Findings)
	}
	if hybrid.Static == nil || hybrid.Static.Safe {
		t.Fatalf("leaky program needs a non-safe static verdict: %+v", hybrid.Static)
	}
	suspicious := map[spectre.Addr]bool{}
	for _, pp := range hybrid.Static.Suspicious {
		suspicious[pp] = true
	}
	for _, f := range hybrid.Findings {
		if !suspicious[f.PC] {
			t.Errorf("finding at pc=%d not among static suspicious points %v", f.PC, hybrid.Static.Suspicious)
		}
	}
}

// TestStaticReportAPI exercises the standalone verdict entry point.
func TestStaticReportAPI(t *testing.T) {
	an := mustNew(t)
	s, err := an.StaticReport(safeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if !s.Safe || len(s.Suspicious) != 0 {
		t.Errorf("safe program: %+v", s)
	}
	s, err = an.StaticReport(v1Program(9))
	if err != nil {
		t.Fatal(err)
	}
	if s.Safe || len(s.Suspicious) == 0 {
		t.Errorf("leaky program: %+v", s)
	}
	if _, err := an.StaticReport(nil); err == nil {
		t.Error("nil program must error")
	}
}

// TestStaticReportGoldenJSON pins the wire schema of the static
// verdict, both as the fast-path certificate and as the `static`
// field riding on a hybrid explorer report.
// Regenerate deliberately with: go test ./spectre -run Golden -update
func TestStaticReportGoldenJSON(t *testing.T) {
	an := mustNew(t, spectre.WithBound(20), spectre.WithStopAtFirst(true),
		spectre.WithStaticPass(true))
	cert, err := an.Run(context.Background(), safeProgram())
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := an.Run(context.Background(), v1Program(9))
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(map[string]*spectre.Report{
		"certificate": cert,
		"hybrid":      hybrid,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "report.static.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("static report JSON schema drifted from golden fixture\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}
