package spectre

import (
	"fmt"
	"strings"

	"pitchfork/internal/crypto"
)

// Table2Row is one line of the paper's Table 2 reproduction: a crypto
// case study analyzed under the branchy C backend and the
// constant-time FaCT backend. Cells use the paper's notation — "✓" for
// a violation found without forwarding-hazard detection, "f" for one
// found only with it, "–" for clean.
type Table2Row struct {
	Case string `json:"case"`
	C    string `json:"c"`
	FaCT string `json:"fact"`
}

// Table2 regenerates the paper's Table 2: the four crypto case studies
// (curve25519-donna, libsodium secretbox, OpenSSL ssl3 record
// validation, OpenSSL MEE-CBC), each compiled under both backends and
// analyzed with the §4.2.1 two-phase procedure. This is the
// repository's heaviest entry point — expect seconds of exploration.
func Table2() ([]Table2Row, error) {
	rows, err := crypto.Table2(crypto.Options{})
	if err != nil {
		return nil, fmt.Errorf("spectre: %w", err)
	}
	out := make([]Table2Row, len(rows))
	for i, r := range rows {
		out[i] = Table2Row{Case: r.Case, C: r.C.String(), FaCT: r.FaCT.String()}
	}
	return out, nil
}

// RenderTable2 formats rows like the paper's Table 2.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s %-5s %-5s\n", "Case Study", "C", "FaCT")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %-5s %-5s\n", r.Case, r.C, r.FaCT)
	}
	return b.String()
}
