// Package spectre is the public façade of the Pitchfork reproduction:
// the one supported way to drive the speculative constant-time (SCT)
// detector of "Constant-Time Foundations for the New Spectre Era"
// (Cauligi et al., PLDI 2020) without importing any internal package.
//
// The package offers three things:
//
//   - A ProgramBuilder for assembling programs in the paper's abstract
//     ISA — instructions, memory layouts, and secret/public labels —
//     plus CompileCTL for the repository's C-like CTL language.
//
//   - An Analyzer, constructed with functional options (WithBound,
//     WithForwardHazards, WithMaxStates, WithMaxRetired,
//     WithStopAtFirst, WithSymbolic, WithSolverSeed, WithWorkers,
//     WithDedup), that runs the paper's worst-case-schedule
//     exploration in concrete or symbolic mode. Both modes run on one
//     domain-parameterized speculation engine, so every option
//     composes with every mode: WithWorkers spreads one exploration —
//     concrete or symbolic — over a work-stealing pool (reports stay
//     deterministic, symbolic witness models included) and sizes the
//     AnalyzeBatch/RunAll corpus fan-out; WithDedup prunes
//     re-converged exploration states through a bounded
//     machine-fingerprint table in either domain. Analysis is
//     context-aware: cancelling the context makes Run return promptly
//     with the findings accumulated so far, and Stream delivers each
//     Finding through a callback as exploration proceeds — the hook
//     batching, sharding, and serving layers build on. An Analyzer is
//     immutable and safe to share across goroutines.
//
//   - A stable, JSON-serializable Finding/Report schema: Spectre
//     variant kind, violating program counter, the guarding
//     speculation sources, the leaking observation, the attacker's
//     directive schedule, and (in symbolic mode) a witness assignment.
//
//   - Automatic mitigation: Repair (and the corpus-shaped RepairAll)
//     synthesizes a minimal certified patch by counterexample-guided
//     iteration — patch each finding's speculation source, re-verify,
//     minimize in cost order — over a portfolio of strategies:
//     StrategyFence (§3.6 fences), StrategyMask (SLH-style load
//     hardening), StrategyRet (Figure 13 retpolines), or the default
//     StrategyAuto, which runs all three and keeps the cheapest
//     certified patch by estimated sequential cost. The RepairResult
//     reports the patched Program, the chosen strategy, a RepairCost
//     (patch sites, instruction growth, sequential-cost estimate,
//     exploration-effort delta), and the per-strategy portfolio rows.
//
// A minimal audit looks like:
//
//	prog := spectre.NewProgramBuilder(). /* … build the victim … */ MustBuild()
//	an, err := spectre.New(spectre.WithBound(20), spectre.WithStopAtFirst(true))
//	if err != nil { /* … */ }
//	rep, err := an.Run(context.Background(), prog)
//	for _, f := range rep.Findings {
//		fmt.Println(f)
//	}
//
// See the package example for a complete builder → analyze → findings
// walk-through on the classic Spectre v1 bounds-check-bypass gadget
// (Kocher case 1).
//
// # Configuration as data
//
// The functional options are a thin layer over an exported,
// JSON-serializable Config: New applies options to DefaultConfig and
// hands the result to NewFromConfig, so the two construction paths are
// interchangeable and Analyzer.Config returns the resolved snapshot
// either way. A partial JSON document unmarshalled onto DefaultConfig
// is the supported deserialization recipe — absent fields keep their
// defaults. Config.CacheKey derives a canonical digest over every
// field, with the invariant that two configurations whose reports can
// differ in any byte never share a key.
//
// # Wire schema versioning
//
// The JSON encodings of Report, Finding, Observation, RepairResult,
// Config, and the Program wire form are a stable schema, pinned by
// golden fixtures under testdata/. The compatibility policy:
//
//   - ReportSchemaVersion names the current schema revision ("1").
//     Within a revision, changes are strictly additive and new fields
//     are omitempty, so existing encodings remain byte-identical and
//     old readers ignore what they don't know. Renaming, removing, or
//     re-typing a field requires a new revision.
//
//   - A Report with an empty SchemaVersion is revision "1": the field
//     was introduced omitempty precisely so library-produced encodings
//     did not change. The serving layer (cmd/spectred) stamps it
//     explicitly on every response; library callers may ignore it.
//
//   - Program.Fingerprint and Config.CacheKey are stability-pinned to
//     fixed digests over a fixed corpus (stability_test.go), because
//     persisted verdict caches key on them. Any change that rotates
//     either digest must bump the corresponding version tag (the
//     program wire form's version field, the config key's domain
//     prefix) so old cache entries are orphaned, never aliased.
//
//   - CacheHit and Coalesced on Report are serving-layer provenance:
//     the library never sets them, and equal-keyed requests are
//     guaranteed byte-identical reports only after clearing them.
package spectre
