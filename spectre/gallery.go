package spectre

import (
	"fmt"

	"pitchfork/internal/attacks"
	"pitchfork/internal/mem"
	"pitchfork/internal/symx"
)

// Figure is one of the paper's worked examples: a victim program plus
// the attacker directive schedule the figure walks through.
type Figure struct {
	// ID is the figure identifier ("fig1", "fig2", …).
	ID string
	// Title describes the gadget; Variant names the Spectre variant or
	// mechanism it demonstrates.
	Title   string
	Variant string
	// LeaksSecret reports whether the figure's schedule leaks a
	// secret (some figures demonstrate safe executions).
	LeaksSecret bool

	attack attacks.Attack
}

// Gallery returns the paper's worked figures in paper order.
func Gallery() []Figure {
	as := attacks.Gallery()
	out := make([]Figure, len(as))
	for i, a := range as {
		out[i] = Figure{
			ID:          a.ID,
			Title:       a.Title,
			Variant:     a.Variant,
			LeaksSecret: a.WantSecretLeak,
			attack:      a,
		}
	}
	return out
}

// FigureByID looks a figure up by identifier.
func FigureByID(id string) (Figure, bool) {
	for _, f := range Gallery() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// Program returns the figure's victim — instructions, data image, and
// register seeds — as an analyzable Program, independent of the
// figure's hand-written attacker schedule. This is how the gallery
// becomes an analysis and repair corpus: run the Analyzer (or Repair)
// over it instead of replaying the scripted directives.
func (f Figure) Program() *Program {
	m := f.attack.New()
	regs := make(map[mem.Reg]mem.Value)
	for _, r := range m.Regs.Registers() {
		regs[r] = m.Regs.Read(r)
	}
	return &Program{
		prog:    m.Prog.Clone(),
		regs:    regs,
		symRegs: make(map[mem.Reg]symx.Expr),
		symMem:  make(map[mem.Word]symx.Expr),
	}
}

// Trace replays the figure's schedule on a fresh machine and returns
// the observation trace the attacker sees.
func (f Figure) Trace() (Trace, error) {
	recs, err := f.attack.Run()
	if err != nil {
		return nil, fmt.Errorf("spectre: %s: %w", f.ID, err)
	}
	var t Trace
	for _, r := range recs {
		for _, o := range r.Obs {
			t = append(t, obsOf(o))
		}
	}
	return t, nil
}

// Render produces the paper-style directive/leakage table for the
// figure.
func (f Figure) Render() (string, error) {
	out, err := f.attack.Render()
	if err != nil {
		return "", fmt.Errorf("spectre: %s: %w", f.ID, err)
	}
	return out, nil
}
