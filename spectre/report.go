package spectre

import (
	"fmt"
	"strings"

	"pitchfork/internal/core"
	"pitchfork/internal/mem"
	"pitchfork/internal/pitchfork"
)

// Observation is one externally visible event of the speculative
// semantics, in the stable wire schema. Addr is meaningful for "read",
// "fwd", and "write" observations; Target for "jump"; "rollback"
// carries neither. Secret reports whether the event's label is above
// public — i.e. whether this event leaks secret-influenced data.
type Observation struct {
	Kind   string `json:"kind"` // "read" | "fwd" | "write" | "jump" | "rollback"
	Addr   Word   `json:"addr"`
	Target Addr   `json:"target"`
	Secret bool   `json:"secret"`
}

// Observation kind strings of the wire schema, matching the paper's
// observation syntax.
const (
	ObsRead     = "read"
	ObsFwd      = "fwd"
	ObsWrite    = "write"
	ObsJump     = "jump"
	ObsRollback = "rollback"
)

// String renders the observation in the paper's syntax, e.g.
// "read 72sec".
func (o Observation) String() string {
	label := "pub"
	if o.Secret {
		label = "sec"
	}
	switch o.Kind {
	case ObsJump:
		return fmt.Sprintf("jump %d%s", o.Target, label)
	case ObsRollback:
		return "rollback"
	default:
		return fmt.Sprintf("%s %d%s", o.Kind, o.Addr, label)
	}
}

// Trace is an observation sequence.
type Trace []Observation

// SecretFree reports whether no observation in the trace is
// secret-labeled.
func (t Trace) SecretFree() bool {
	for _, o := range t {
		if o.Secret {
			return false
		}
	}
	return true
}

// String renders the trace as "o1; o2; …".
func (t Trace) String() string {
	parts := make([]string, len(t))
	for i, o := range t {
		parts[i] = o.String()
	}
	return strings.Join(parts, "; ")
}

// Spectre variant identifiers used in Finding.Variant. They mirror the
// detector's heuristic classification of a violation's
// microarchitectural cause.
const (
	VariantV1      = "spectre-v1"
	VariantV11     = "spectre-v1.1"
	VariantV4      = "spectre-v4"
	VariantSeq     = "sequential-ct-violation"
	VariantUnknown = "unclassified"
)

// Speculation-source kind strings used in SpecSource.Kind.
const (
	SourceBranch = "branch"
	SourceStore  = "store"
	SourceReturn = "return"
)

// SpecSource names one speculation primitive that was still
// unresolved when the leak was detected: the guard the leaking
// instruction raced ahead of. Kind is one of the Source* constants;
// PC the guarding instruction's program point. Fence repair anchors
// its insertions here.
type SpecSource struct {
	Kind string `json:"kind"`
	PC   Addr   `json:"pc"`
}

// String renders the source, e.g. "branch@4".
func (s SpecSource) String() string { return fmt.Sprintf("%s@%d", s.Kind, s.PC) }

// Finding is one detected SCT violation in the stable wire schema.
type Finding struct {
	// Variant is the heuristic Spectre-variant classification (one of
	// the Variant* constants).
	Variant string `json:"variant"`
	// PC is the program point of the machine when the leak was flagged.
	PC Addr `json:"pc"`
	// Sources are the speculation primitives guarding the leak, oldest
	// first (empty for sequential violations, whose guard has retired).
	Sources []SpecSource `json:"sources,omitempty"`
	// Observation is the secret-labeled observation that constitutes
	// the leak.
	Observation Observation `json:"observation"`
	// Trace is the observation trace up to and including the leak.
	Trace Trace `json:"trace,omitempty"`
	// Schedule is the attacker directive schedule that produced the
	// leak, rendered in the paper's directive syntax (concrete mode).
	Schedule []string `json:"schedule,omitempty"`
	// Witness is a satisfying assignment for the symbolic inputs that
	// reaches the leak (symbolic mode).
	Witness map[string]uint64 `json:"witness,omitempty"`
}

// String renders the finding on one line.
func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s at pc %d", f.Variant, f.Observation, f.PC)
	if len(f.Witness) > 0 {
		s += fmt.Sprintf(" (witness %v)", f.Witness)
	}
	return s
}

// Analysis mode strings used in Report.Mode.
const (
	// ModeConcrete and ModeSymbolic name the two exploration domains.
	ModeConcrete = "concrete"
	ModeSymbolic = "symbolic"
	// ModeStatic marks a report produced entirely by the static
	// pre-analysis (WithStaticPass): the program was proven safe
	// without constructing an explorer, so States and Paths are zero.
	ModeStatic = "static"
)

// StaticReport is the static pre-analysis verdict in the stable wire
// schema (see WithStaticPass and Analyzer.StaticReport).
type StaticReport struct {
	// Safe reports whether the pre-analysis proved the program free of
	// secret-labeled observations under every speculative schedule.
	Safe bool `json:"safe"`
	// Points is the number of program points; Reachable how many the
	// analysis considers (transiently) reachable.
	Points    int `json:"points"`
	Reachable int `json:"reachable"`
	// Suspicious lists the program points the analysis could not prove
	// safe, ascending. Every explorer finding's PC is in this list —
	// the converse need not hold (the analysis over-approximates).
	Suspicious []Addr `json:"suspicious,omitempty"`
	// ComputedFlow reports that the program contains computed control
	// flow (register-target jumps or returns) the static CFG cannot
	// resolve, forcing the analysis to its most conservative regime.
	ComputedFlow bool `json:"computedFlow"`
}

// SolverStats is the symbolic constraint engine's per-analysis
// counters in the stable wire schema: constraint queries answered,
// answers served from the fingerprint-keyed model cache, queries
// settled UNSAT by interval/known-bits propagation alone, queries
// whose probe space propagation narrowed, models obtained by
// extending the parent path condition's model, and total random-probe
// iterations spent. Present only on symbolic reports. The counters
// are diagnostics: under parallel runs the cache-hit/fresh-solve
// split depends on worker interleaving (findings never do).
type SolverStats struct {
	Queries        uint64 `json:"queries"`
	CacheHits      uint64 `json:"cacheHits"`
	DefiniteUnsats uint64 `json:"definiteUnsats"`
	PropPruned     uint64 `json:"propPruned"`
	ExtendHits     uint64 `json:"extendHits"`
	ProbeIters     uint64 `json:"probeIters"`
}

// ReportSchemaVersion is the current revision of the wire schema.
// Report.SchemaVersion carries it on versioned wire traffic; an empty
// SchemaVersion means "1" (the schema has been backward-compatible
// since its introduction). See the compatibility policy in the package
// documentation.
const ReportSchemaVersion = "1"

// Report aggregates one analysis run in the stable wire schema.
type Report struct {
	// SchemaVersion identifies the wire-schema revision of this report.
	// The library leaves it empty (meaning ReportSchemaVersion is
	// implied, which keeps pre-versioning encodings byte-identical);
	// the serving layer stamps it explicitly on every response.
	SchemaVersion string `json:"schemaVersion,omitempty"`
	// Mode is ModeConcrete, ModeSymbolic, or ModeStatic.
	Mode string `json:"mode"`
	// Bound is the speculation bound the run used.
	Bound int `json:"bound"`
	// ForwardHazards reports whether Spectre v4 style forwarding
	// schedules were explored.
	ForwardHazards bool `json:"forwardHazards"`
	// SecretFree reports whether the program was found SCT-clean at
	// the analyzed bound.
	SecretFree bool `json:"secretFree"`
	// Findings are the detected violations, in discovery order.
	Findings []Finding `json:"findings"`
	// States is the number of explored machine states; Paths the
	// number of completed exploration paths.
	States int `json:"states"`
	Paths  int `json:"paths"`
	// Truncated reports whether the MaxStates budget was exhausted.
	Truncated bool `json:"truncated"`
	// Interrupted reports whether the run was cut short — by context
	// cancellation or by a Stream callback returning false.
	Interrupted bool `json:"interrupted"`
	// Workers is the number of exploration goroutines the run used
	// (see WithWorkers).
	Workers int `json:"workers"`
	// DedupHits counts exploration states pruned by fingerprint
	// deduplication (see WithDedup); 0 when dedup is off.
	DedupHits int `json:"dedupHits"`
	// Static is the static pre-analysis verdict when WithStaticPass was
	// enabled; nil otherwise (absent on the wire).
	Static *StaticReport `json:"static,omitempty"`
	// Solver carries the constraint engine's counters on symbolic
	// reports; nil in concrete and static modes (absent on the wire,
	// so pre-existing encodings are unchanged).
	Solver *SolverStats `json:"solver,omitempty"`
	// CacheHit and Coalesced are cache provenance, stamped by the
	// serving layer and never set by the library: CacheHit marks a
	// report answered from the verdict cache without running an
	// analysis; Coalesced marks a report shared from another request's
	// in-flight analysis of the same (fingerprint, config) key. Both
	// are absent from the wire when false, so library-produced
	// encodings are unchanged.
	CacheHit  bool `json:"cacheHit,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
}

// Summary renders a one-line result.
func (r *Report) Summary() string {
	status := "clean"
	if !r.SecretFree {
		status = fmt.Sprintf("%d violation(s)", len(r.Findings))
	}
	s := fmt.Sprintf("%s (%s mode, bound %d, %d states, %d paths)",
		status, r.Mode, r.Bound, r.States, r.Paths)
	if r.Interrupted {
		s += " [interrupted]"
	}
	if r.Truncated {
		s += " [truncated]"
	}
	if !r.SecretFree {
		s += "; first: " + r.Findings[0].String()
	}
	return s
}

// ---------------------------------------------------------------------
// Conversions between the wire schema and the internal types.
// ---------------------------------------------------------------------

func obsOf(o core.Observation) Observation {
	out := Observation{Secret: o.Secret()}
	switch o.Kind {
	case core.ORead:
		out.Kind, out.Addr = ObsRead, o.Addr
	case core.OFwd:
		out.Kind, out.Addr = ObsFwd, o.Addr
	case core.OWrite:
		out.Kind, out.Addr = ObsWrite, o.Addr
	case core.OJump:
		out.Kind, out.Target = ObsJump, o.Target
	case core.ORollback:
		out.Kind = ObsRollback
	}
	return out
}

func traceOf(t core.Trace) Trace {
	out := make(Trace, len(t))
	for i, o := range t {
		out[i] = obsOf(o)
	}
	return out
}

// coreObs lowers a wire observation back into the semantics' type.
// Only the binary public/secret distinction survives the wire schema;
// secret observations come back with the canonical secret label.
func coreObs(o Observation) core.Observation {
	label := mem.Public
	if o.Secret {
		label = mem.Secret
	}
	switch o.Kind {
	case ObsRead:
		return core.ReadObs(o.Addr, label)
	case ObsFwd:
		return core.FwdObs(o.Addr, label)
	case ObsWrite:
		return core.WriteObs(o.Addr, label)
	case ObsJump:
		return core.JumpObs(o.Target, label)
	default:
		return core.RollbackObs()
	}
}

func coreTrace(t Trace) core.Trace {
	out := make(core.Trace, len(t))
	for i, o := range t {
		out[i] = coreObs(o)
	}
	return out
}

func findingOf(v pitchfork.Violation) Finding {
	f := Finding{
		Variant:     v.Kind.String(),
		PC:          v.PC,
		Observation: obsOf(v.Obs),
		Trace:       traceOf(v.Trace),
	}
	for _, s := range v.Sources {
		f.Sources = append(f.Sources, SpecSource{Kind: s.Kind.String(), PC: Addr(s.PC)})
	}
	if len(v.Schedule) > 0 {
		f.Schedule = make([]string, len(v.Schedule))
		for i, d := range v.Schedule {
			f.Schedule[i] = d.String()
		}
	}
	if len(v.Model) > 0 {
		f.Witness = make(map[string]uint64, len(v.Model))
		for k, w := range v.Model {
			f.Witness[k] = w
		}
	}
	return f
}

func reportOf(rep pitchfork.Report, bound int, fwd bool) *Report {
	out := &Report{
		Mode:           rep.Mode,
		Bound:          bound,
		ForwardHazards: fwd,
		SecretFree:     len(rep.Violations) == 0,
		Findings:       make([]Finding, 0, len(rep.Violations)),
		States:         rep.States,
		Paths:          rep.Paths,
		Truncated:      rep.Truncated,
		Interrupted:    rep.Interrupted,
		Workers:        rep.Workers,
		DedupHits:      rep.DedupHits,
	}
	if rep.Solver != nil {
		out.Solver = &SolverStats{
			Queries:        rep.Solver.Queries,
			CacheHits:      rep.Solver.CacheHits,
			DefiniteUnsats: rep.Solver.DefiniteUnsats,
			PropPruned:     rep.Solver.PropPruned,
			ExtendHits:     rep.Solver.ExtendHits,
			ProbeIters:     rep.Solver.ProbeIters,
		}
	}
	for _, v := range rep.Violations {
		out.Findings = append(out.Findings, findingOf(v))
	}
	return out
}
