package spectre_test

import (
	"context"
	"fmt"
	"log"

	"pitchfork/spectre"
)

// Example walks the classic Spectre v1 bounds-check bypass — Kocher's
// case 1, the paper's Figure 1 — through the public API: assemble the
// victim with the builder, analyze it, and inspect the findings.
//
// The victim is
//
//	if (x < 4) { b = A[x]; c = B[b]; }
//
// with the secret key laid out directly after the four-element public
// array A. Architecturally the guard keeps x in bounds; under a
// mispredicted branch the out-of-bounds A[9] reads a key byte and the
// second load transmits it through a memory address.
func Example() {
	const (
		rx = spectre.Reg(0) // attacker-controlled index x
		rb = spectre.Reg(1)
		rc = spectre.Reg(2)
	)
	prog := spectre.NewProgramBuilder().
		Br(spectre.OpGt, []spectre.Operand{spectre.Imm(4), spectre.R(rx)}, 2, 4).
		Load(rb, spectre.Imm(0x40), spectre.R(rx)). // b = A[x]
		Load(rc, spectre.Imm(0x44), spectre.R(rb)). // c = B[b]
		Public(0x40, 10, 11, 12, 13).               // A
		Public(0x44, 20, 21, 22, 23).               // B
		Secret(0x48, 0xA0, 0xA1, 0xA2, 0xA3).       // key, adjacent to A
		SetReg(rx, 9).                              // out of bounds
		MustBuild()

	// Sequentially the program is constant-time: the guard holds.
	seq, err := prog.Sequential(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sequentially constant-time:", seq.SecretFree())

	// Speculatively it is not: the detector finds the leak.
	an, err := spectre.New(spectre.WithBound(20), spectre.WithStopAtFirst(true))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := an.Run(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("speculatively constant-time:", rep.SecretFree)
	for _, f := range rep.Findings {
		fmt.Println(f)
	}
	// Output:
	// sequentially constant-time: true
	// speculatively constant-time: false
	// spectre-v1: read 229sec at pc 3
}
