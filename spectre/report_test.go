package spectre_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pitchfork/spectre"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden report fixture")

// TestReportGoldenJSON pins the wire schema: any change to the
// JSON encoding of Report/Finding/Observation is a breaking change
// for downstream consumers and must show up as a diff here.
// Regenerate deliberately with: go test ./spectre -run Golden -update
func TestReportGoldenJSON(t *testing.T) {
	rep, err := mustNew(t,
		spectre.WithBound(20),
		spectre.WithForwardHazards(false),
		spectre.WithStopAtFirst(true),
	).Run(context.Background(), v1Program(9))
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "report.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report JSON schema drifted from golden fixture\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

// TestSymbolicReportGoldenJSON pins the wire schema of a symbolic run
// on the unified engine: the same Report shape as concrete mode (the
// schema is backward-compatible), now with Workers and DedupHits
// populated by the shared engine's fingerprint table, the attacker
// schedule recorded, and the witness assignment attached. The run is
// serial: with dedup on, which reconverged twin survives — and hence
// the schedule prefixes under its subtree — is only deterministic on
// one goroutine, and a byte-pinned fixture must not race. (Parallel
// symbolic determinism is asserted semantically in
// symbolic_engine_test.go and the root determinism suite.)
// Regenerate deliberately with: go test ./spectre -run Golden -update
func TestSymbolicReportGoldenJSON(t *testing.T) {
	p := figure1Symbolic(t)
	rep, err := mustNew(t,
		spectre.WithSymbolic(true),
		spectre.WithDedup(1<<16),
	).Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "report.symbolic.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("symbolic report JSON schema drifted from golden fixture\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

// TestRepairGoldenJSON pins the repair wire schema — outcome, chosen
// strategy, patch sites, per-strategy portfolio rows, and the cost
// block with the sequential estimates — on a serial auto-portfolio
// repair of the Figure 1 gadget. Any field drift is a breaking change
// for downstream consumers and must show up as a diff here.
// Regenerate deliberately with: go test ./spectre -run Golden -update
func TestRepairGoldenJSON(t *testing.T) {
	res, err := mustNew(t).Repair(context.Background(), v1Program(9))
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "repair.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("repair JSON schema drifted from golden fixture\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

// TestVersionedReportGoldenJSON pins the versioned wire shape the
// serving layer emits: SchemaVersion stamped explicitly plus the cache
// provenance fields (CacheHit, Coalesced) set. The plain goldens above
// prove the same report with these fields unset stays byte-identical
// to the pre-versioning encoding — together the two pins are the
// compatibility policy (doc.go, "Wire schema versioning") in
// executable form.
// Regenerate deliberately with: go test ./spectre -run Golden -update
func TestVersionedReportGoldenJSON(t *testing.T) {
	rep, err := mustNew(t,
		spectre.WithBound(20),
		spectre.WithForwardHazards(false),
		spectre.WithStopAtFirst(true),
	).Run(context.Background(), v1Program(9))
	if err != nil {
		t.Fatal(err)
	}
	rep.SchemaVersion = spectre.ReportSchemaVersion
	rep.CacheHit = true
	rep.Coalesced = true
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "report.versioned.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("versioned report JSON schema drifted from golden fixture\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

// TestReportJSONRoundTrip checks the schema decodes back into the
// same values — the property a service consuming findings relies on.
func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := mustNew(t, spectre.WithBound(20)).Run(context.Background(), v1Program(9))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back spectre.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Summary() != rep.Summary() {
		t.Fatalf("round trip drift:\n got %s\nwant %s", back.Summary(), rep.Summary())
	}
	if len(back.Findings) != len(rep.Findings) {
		t.Fatalf("findings count drifted: %d vs %d", len(back.Findings), len(rep.Findings))
	}
	for i := range back.Findings {
		if back.Findings[i].String() != rep.Findings[i].String() {
			t.Fatalf("finding %d drifted", i)
		}
	}
}
