// Command specrun replays the paper's worked figures — each as a
// program plus attacker directive schedule — and prints the
// directive/leakage tables the figures show.
//
// Usage:
//
//	specrun [fig1|fig2|fig5|fig6|fig7|fig8|fig11|fig13 ...]
//
// With no arguments, the whole gallery runs.
package main

import (
	"fmt"
	"os"

	"pitchfork/spectre"
)

func main() {
	want := map[string]bool{}
	for _, a := range os.Args[1:] {
		want[a] = true
	}
	ran := 0
	for _, f := range spectre.Gallery() {
		if len(want) > 0 && !want[f.ID] {
			continue
		}
		out, err := f.Render()
		if err != nil {
			fmt.Fprintf(os.Stderr, "specrun: %s: %v\n", f.ID, err)
			os.Exit(1)
		}
		fmt.Println(out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "specrun: no matching figures")
		os.Exit(2)
	}
}
