// Command ctlc compiles a CTL source file under either backend and
// prints the generated program in the paper's instruction notation.
//
// Usage:
//
//	ctlc [-mode c|fact] [-run] file.ctl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pitchfork/spectre"
)

func main() {
	mode := flag.String("mode", "c", "backend: c or fact")
	run := flag.Bool("run", false, "execute sequentially and dump globals")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ctlc [flags] file.ctl")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := spectre.ParseSourceMode(*mode)
	if err != nil {
		fatal(err)
	}
	prog, err := spectre.CompileCTL(string(src), m)
	if err != nil {
		fatal(err)
	}
	fmt.Print(prog.Disassemble())
	if !*run {
		return
	}
	res, err := prog.Sequential(1_000_000)
	if err != nil {
		fatal(err)
	}
	fmt.Println("-- globals after sequential execution --")
	globals := prog.Globals()
	names := make([]string, 0, len(globals))
	for name := range globals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		addr := globals[name]
		v, secret := res.Read(addr)
		label := "pub"
		if secret {
			label = "sec"
		}
		fmt.Printf("%12s @ %#x = %d%s\n", name, addr, int64(v), label)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctlc:", err)
	os.Exit(1)
}
