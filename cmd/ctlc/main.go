// Command ctlc compiles a CTL source file under either backend and
// prints the generated program in the paper's instruction notation.
//
// Usage:
//
//	ctlc [-mode c|fact] [-run] file.ctl
package main

import (
	"flag"
	"fmt"
	"os"

	"pitchfork/internal/core"
	"pitchfork/internal/ct"
)

func main() {
	mode := flag.String("mode", "c", "backend: c or fact")
	run := flag.Bool("run", false, "execute sequentially and dump globals")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ctlc [flags] file.ctl")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m := ct.ModeC
	if *mode == "fact" {
		m = ct.ModeFaCT
	}
	comp, err := ct.Compile(string(src), m)
	if err != nil {
		fatal(err)
	}
	for _, n := range comp.Prog.Points() {
		in, _ := comp.Prog.At(n)
		fmt.Printf("%4d: %s\n", n, in)
	}
	if !*run {
		return
	}
	machine := core.New(comp.Prog)
	if _, _, err := core.RunSequential(machine, 1_000_000); err != nil {
		fatal(err)
	}
	fmt.Println("-- globals after sequential execution --")
	for name, addr := range comp.GlobalAddr {
		v, _ := machine.Mem.Read(addr)
		fmt.Printf("%12s @ %#x = %s\n", name, addr, v)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctlc:", err)
	os.Exit(1)
}
