// Command spectred is the analysis daemon: the spectre façade served
// over HTTP, for CI pipelines and editor integrations that submit the
// same programs repeatedly and want verdicts without paying process
// startup or re-analysis.
//
//	spectred -addr :8321 -cache-dir /var/cache/spectred
//
// Endpoints (JSON request/response throughout):
//
//	POST /v1/analyze            analyze a program (CTL source or wire form)
//	POST /v1/repair             synthesize a mitigation
//	GET  /v1/report/{fp}        fetch the cached verdict for a fingerprint
//	GET  /healthz               liveness
//	GET  /statsz                service counters
//
// Verdicts are cached under (program fingerprint, config cache key) in
// a bounded in-memory LRU plus an optional on-disk tier (-cache-dir)
// that survives restarts. Disk entries are sha256-checksummed and
// verified on read; corrupt or truncated files are quarantined, never
// served. -cache-disk-bytes bounds the disk tier with LRU eviction.
// Concurrent identical submissions coalesce into one analysis. When
// the bounded work queue is full the daemon answers 429 with
// Retry-After rather than queueing unboundedly.
//
// The daemon is built to survive its inputs: a panicking analysis is
// recovered and answered as a structured 500 (code "engine_panic"),
// disk I/O failures degrade to cache misses, and repeated disk
// failures disable the persistent tier — /healthz then reports
// "degraded" (still HTTP 200) and serving continues memory-only.
// Every non-2xx response carries a stable machine-readable error code
// (see the spectre package's ErrCode constants); /statsz exposes the
// fault-tolerance counters (panics, quarantined, gcEvictions,
// diskBytes, injectedFaults).
//
// For chaos testing only, the SPECTRED_FAULTS environment variable
// installs a deterministic fault-injection plan, e.g.
//
//	SPECTRED_FAULTS="seed=7,engine=0.05,diskread=0.1,diskwrite=0.1,cachelookup=0.1,pooladmit=0.05"
//
// There is deliberately no flag: production configuration cannot turn
// this on by accident.
//
// On SIGTERM or SIGINT the daemon stops accepting connections, lets
// in-flight and queued analyses finish, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"pitchfork/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent analyses")
	queue := flag.Int("queue", 64, "bounded work queue depth (full queue → 429)")
	memEntries := flag.Int("cache-entries", 1024, "in-memory verdict cache capacity")
	cacheDir := flag.String("cache-dir", "", "persistent verdict cache directory (empty disables)")
	cacheDiskBytes := flag.Int64("cache-disk-bytes", 0, "persistent-tier byte budget with LRU eviction (0 = unbounded)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request analysis budget")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown budget for open connections")
	flag.Parse()

	if spec := os.Getenv("SPECTRED_FAULTS"); spec != "" {
		log.Printf("CHAOS: fault injection enabled: %s", spec)
	}
	if err := run(*addr, serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		MemEntries: *memEntries,
		CacheDir:   *cacheDir,
		DiskBytes:  *cacheDiskBytes,
		Timeout:    *timeout,
	}, *drainTimeout); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, cfg serve.Config, drainTimeout time.Duration) error {
	svc, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	httpSrv := &http.Server{Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("spectred listening on %s (workers=%d queue=%d cache-entries=%d cache-dir=%q timeout=%s)",
		ln.Addr(), cfg.Workers, cfg.QueueDepth, cfg.MemEntries, cfg.CacheDir, cfg.Timeout)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	log.Printf("signal received: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	svc.Drain()
	log.Printf("drained")
	return nil
}
