// Command pitchfork analyzes a CTL source file for speculative
// constant-time violations, following the paper's §4.2.1 procedure.
//
// Usage:
//
//	pitchfork [-mode c|fact] [-bound N] [-fwd] [-all] [-json] [-symbolic] [-symvars x] [-workers N] [-dedup N] [-static] [-repair] [-strategy auto|fence|mask|ret] file.ctl
//
// Without -bound/-fwd the two-phase procedure runs: bound 250 without
// forwarding-hazard detection, then bound 20 with it. With -json the
// stable machine-readable report schema is emitted instead of the
// human-readable summary. -workers parallelizes the exploration over a
// work-stealing pool (0 means all CPU cores); -dedup bounds an optional
// state-deduplication table that prunes re-converged schedules. Both
// compose with -symbolic, which switches to the symbolic detector:
// the globals named by -symvars (default x, the corpus convention for
// the attacker-controlled index) become unconstrained solver
// variables, and each finding carries a witness assignment.
//
// -static enables the speculative-taint pre-analysis: a program the
// static pass proves safe is certified in O(|program|) without running
// the explorer, and a program it cannot prove safe is explored in
// hybrid mode, with the static verdicts pruning provably-safe
// speculation forks (findings are unchanged; only work is saved). With
// -repair, the pass additionally ranks candidate fence sites by static
// suspiciousness.
//
// -repair switches from detection to mitigation: the tool synthesizes
// a minimal patch set (propose at the guarding speculation source,
// re-verify, iterate, minimize), then emits the repaired program with
// its cost table and — under the default -strategy=auto portfolio —
// a per-strategy comparison table. -strategy picks the mitigation:
// "fence" (§3.6 speculation fences), "mask" (SLH-style speculative
// load hardening), "ret" (Figure 13 retpolines), or "auto" to run all
// three and keep the cheapest certified patch by estimated sequential
// cost. Repair verifies at the hazard-aware bound 20 unless
// -bound/-fwd override it; the exit status is 0 only when the program
// is secret-free as given or after repair.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"pitchfork/spectre"
)

func main() {
	mode := flag.String("mode", "c", "backend: c (branchy) or fact (constant-time selects)")
	bound := flag.Int("bound", 0, "speculation bound (0 = run the paper's two-phase procedure)")
	fwd := flag.Bool("fwd", false, "enable forwarding-hazard detection (with -bound)")
	all := flag.Bool("all", false, "report all violations, not just the first")
	jsonOut := flag.Bool("json", false, "emit the machine-readable JSON report")
	symbolic := flag.Bool("symbolic", false, "symbolic mode: unbind the -symvars globals as unconstrained attacker inputs")
	symvars := flag.String("symvars", "x", "comma-separated CTL globals to unbind in -symbolic mode")
	workers := flag.Int("workers", 1, "exploration worker goroutines (0 = all CPU cores)")
	dedup := flag.Int("dedup", 0, "bound of the state-dedup table (0 = off)")
	static := flag.Bool("static", false, "run the static taint pre-analysis: certify safe programs without exploring, prune safe forks otherwise")
	doRepair := flag.Bool("repair", false, "synthesize a minimal repair and emit the repaired program with its cost table")
	strategy := flag.String("strategy", "auto", "repair mitigation: auto (cheapest certified), fence, mask, or ret (with -repair)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pitchfork [flags] file.ctl")
		os.Exit(2)
	}
	if *bound < 0 {
		fatal(fmt.Errorf("speculation bound must be positive, got %d", *bound))
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := spectre.ParseSourceMode(*mode)
	if err != nil {
		fatal(err)
	}
	prog, err := spectre.CompileCTL(string(src), m)
	if err != nil {
		fatal(err)
	}
	if *symbolic {
		for _, name := range strings.Split(*symvars, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !prog.SymbolicGlobal(name, name) {
				fatal(fmt.Errorf("-symbolic: no global %q to unbind", name))
			}
		}
	}

	// Interrupting the process (SIGINT) cancels the analysis and still
	// reports the findings accumulated so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *doRepair {
		opts := []spectre.Option{
			spectre.WithSymbolic(*symbolic),
			spectre.WithWorkers(*workers),
			spectre.WithDedup(*dedup),
			spectre.WithStaticPass(*static),
			spectre.WithRepairStrategy(*strategy),
		}
		if *bound > 0 {
			opts = append(opts, spectre.WithBound(*bound), spectre.WithForwardHazards(*fwd))
		}
		an, err := spectre.New(opts...)
		if err != nil {
			fatal(err)
		}
		res, err := an.Repair(ctx, prog)
		if err != nil {
			if res == nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr, "pitchfork: repair aborted:", err)
		}
		if *jsonOut {
			emit(res)
			exitClean(err == nil && res.SecretFree())
		}
		fmt.Println("repair:", res.Summary())
		if res.Outcome == spectre.RepairRepaired {
			fmt.Println(res.Cost.Table())
			fmt.Printf("  %-18s %s\n", "patch points", joinAddrs(res.FencePoints))
			if tab := res.StrategyTable(); tab != "" {
				fmt.Println("\nstrategy portfolio:")
				fmt.Println(tab)
			}
			fmt.Println("\nrepaired program:")
			fmt.Print(res.Program.Disassemble())
		} else if !res.SecretFree() && res.Before != nil && !res.Before.SecretFree {
			reportFindings(res.Before)
		}
		exitClean(err == nil && res.SecretFree())
	}

	if *bound > 0 {
		an, err := spectre.New(
			spectre.WithBound(*bound),
			spectre.WithForwardHazards(*fwd),
			spectre.WithStopAtFirst(!*all),
			spectre.WithSymbolic(*symbolic),
			spectre.WithWorkers(*workers),
			spectre.WithDedup(*dedup),
			spectre.WithStaticPass(*static),
		)
		if err != nil {
			fatal(err)
		}
		rep, err := an.Run(ctx, prog)
		if rep == nil {
			fatal(err)
		}
		// A non-nil report alongside an error means cancellation: the
		// partial findings are reported, but the run must not pass as
		// clean.
		if err != nil {
			fmt.Fprintln(os.Stderr, "pitchfork: analysis interrupted; results are partial:", err)
		}
		if *jsonOut {
			emit(rep)
			exitClean(rep.SecretFree && err == nil)
		}
		fmt.Println(rep.Summary())
		reportStatic(rep)
		reportSolver(rep)
		if !rep.SecretFree {
			reportFindings(rep)
		}
		exitClean(rep.SecretFree && err == nil)
	}

	an, err := spectre.New(
		spectre.WithStopAtFirst(!*all),
		spectre.WithSymbolic(*symbolic),
		spectre.WithWorkers(*workers),
		spectre.WithDedup(*dedup),
		spectre.WithStaticPass(*static),
	)
	if err != nil {
		fatal(err)
	}
	pr, err := an.RunProcedure(ctx, prog)
	if pr == nil || pr.Phase1 == nil {
		fatal(err)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pitchfork: analysis interrupted; results are partial:", err)
	}
	if *jsonOut {
		emit(pr)
		exitClean(pr.SecretFree() && err == nil)
	}
	fmt.Printf("phase 1 (bound %d, no hazard detection): %s\n", spectre.BoundNoHazards, pr.Phase1.Summary())
	reportStatic(pr.Phase1)
	reportSolver(pr.Phase1)
	if !pr.Phase1.SecretFree {
		reportFindings(pr.Phase1)
		os.Exit(1)
	}
	if pr.Phase2 == nil {
		// Cancelled after a clean phase 1, before phase 2 completed.
		os.Exit(1)
	}
	fmt.Printf("phase 2 (bound %d, hazard detection):    %s\n", spectre.BoundWithHazards, pr.Phase2.Summary())
	if !pr.Phase2.SecretFree {
		reportFindings(pr.Phase2)
		os.Exit(1)
	}
	if err != nil {
		os.Exit(1)
	}
	fmt.Println("speculative constant-time at the analyzed bounds")
}

func emit(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func exitClean(clean bool) {
	if !clean {
		os.Exit(1)
	}
	os.Exit(0)
}

func reportStatic(rep *spectre.Report) {
	s := rep.Static
	if s == nil {
		return
	}
	if s.Safe {
		fmt.Printf("static pre-analysis: safe (%d of %d points reachable); explorer skipped\n", s.Reachable, s.Points)
		return
	}
	note := ""
	if s.ComputedFlow {
		note = " [computed control flow: fully conservative]"
	}
	fmt.Printf("static pre-analysis: %d suspicious point(s) of %d reachable%s: %s\n",
		len(s.Suspicious), s.Reachable, note, joinAddrs(s.Suspicious))
}

func reportSolver(rep *spectre.Report) {
	s := rep.Solver
	if s == nil {
		return
	}
	fmt.Printf("solver: %d queries (%d cache hits, %d definite-unsat, %d domain-narrowed, %d parent-extended), %d probe iterations\n",
		s.Queries, s.CacheHits, s.DefiniteUnsats, s.PropPruned, s.ExtendHits, s.ProbeIters)
}

func reportFindings(rep *spectre.Report) {
	for i, f := range rep.Findings {
		fmt.Printf("violation %d: %s\n", i+1, f)
		if len(f.Schedule) > 0 && len(f.Schedule) <= 40 {
			fmt.Printf("  schedule: %s\n", strings.Join(f.Schedule, "; "))
		}
		fmt.Printf("  trace: %s\n", f.Trace)
	}
}

func joinAddrs(as []spectre.Addr) string {
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return strings.Join(parts, ", ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pitchfork:", err)
	os.Exit(1)
}
