// Command pitchfork analyzes a CTL source file for speculative
// constant-time violations, following the paper's §4.2.1 procedure.
//
// Usage:
//
//	pitchfork [-mode c|fact] [-bound N] [-fwd] [-all] file.ctl
//
// Without -bound/-fwd the two-phase procedure runs: bound 250 without
// forwarding-hazard detection, then bound 20 with it.
package main

import (
	"flag"
	"fmt"
	"os"

	"pitchfork/internal/core"
	"pitchfork/internal/ct"
	"pitchfork/internal/pitchfork"
)

func main() {
	mode := flag.String("mode", "c", "backend: c (branchy) or fact (constant-time selects)")
	bound := flag.Int("bound", 0, "speculation bound (0 = run the paper's two-phase procedure)")
	fwd := flag.Bool("fwd", false, "enable forwarding-hazard detection (with -bound)")
	all := flag.Bool("all", false, "report all violations, not just the first")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pitchfork [flags] file.ctl")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m := ct.ModeC
	if *mode == "fact" {
		m = ct.ModeFaCT
	}
	comp, err := ct.Compile(string(src), m)
	if err != nil {
		fatal(err)
	}
	opts := pitchfork.Options{StopAtFirst: !*all}
	if *bound > 0 {
		opts.Bound = *bound
		opts.ForwardHazards = *fwd
		rep, err := pitchfork.Analyze(core.New(comp.Prog), opts)
		if err != nil {
			fatal(err)
		}
		report(rep)
		return
	}
	p1, p2, err := pitchfork.AnalyzeProcedure(func() *core.Machine { return core.New(comp.Prog) }, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("phase 1 (bound %d, no hazard detection): %s\n", pitchfork.BoundNoHazards, p1.Summary())
	if !p1.SecretFree() {
		reportViolations(p1)
		os.Exit(1)
	}
	fmt.Printf("phase 2 (bound %d, hazard detection):    %s\n", pitchfork.BoundWithHazards, p2.Summary())
	if !p2.SecretFree() {
		reportViolations(p2)
		os.Exit(1)
	}
	fmt.Println("speculative constant-time at the analyzed bounds")
}

func report(rep pitchfork.Report) {
	fmt.Println(rep.Summary())
	if !rep.SecretFree() {
		reportViolations(rep)
		os.Exit(1)
	}
}

func reportViolations(rep pitchfork.Report) {
	for i, v := range rep.Violations {
		fmt.Printf("violation %d: %s\n", i+1, v)
		if len(v.Schedule) > 0 && len(v.Schedule) <= 40 {
			fmt.Printf("  schedule: %s\n", v.Schedule)
		}
		fmt.Printf("  trace: %s\n", v.Trace)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pitchfork:", err)
	os.Exit(1)
}
