// Command specload replays the detection corpora against a running
// spectred and reports throughput, latency percentiles, and cache hit
// rates — the service's load and correctness harness.
//
//	spectred -addr :8321 &
//	specload -addr http://127.0.0.1:8321 -c 8 -passes 2 -verify -min-hitrate 0.95
//
// The corpus is the repo's own: the Kocher cases, the spec-only v1
// suite, the v1.1 suite (all sent as CTL source), and the paper's
// gallery figures (sent in builder wire form). Each pass replays every
// case at the configured concurrency; with -verify every verdict is
// additionally checked byte-for-byte against an in-process library run
// (modulo the serving layer's provenance stamps). A non-zero exit
// means errors, verification mismatches, or a final-pass hit rate
// under -min-hitrate.
//
// -retry N gives each request a retry budget of N additional attempts
// with jittered exponential backoff, honoring the server's Retry-After
// header on 429/503. Retryable failures are transport errors and 429,
// 500, 502, 503, 504 statuses — which is what lets the generator ride
// out backpressure and chaos-injected faults (recovered panics answer
// 500 with code "engine_panic" and succeed on a clean retry) instead
// of failing on them; a 4xx other than 429 still fails immediately.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pitchfork/internal/serve"
	"pitchfork/internal/testcases"
	"pitchfork/spectre"
)

type corpusCase struct {
	name string
	prog *spectre.Program
	body []byte
}

func buildCorpus(sets string) ([]corpusCase, error) {
	want := make(map[string]bool)
	for _, s := range strings.Split(sets, ",") {
		want[strings.TrimSpace(s)] = true
	}
	var out []corpusCase
	addSource := func(name, src string) error {
		prog, err := spectre.CompileCTL(src, spectre.ModeC)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		body, err := json.Marshal(serve.AnalyzeRequest{Source: src})
		if err != nil {
			return err
		}
		out = append(out, corpusCase{name: name, prog: prog, body: body})
		return nil
	}
	addCases := func(cs []testcases.Case) error {
		for _, c := range cs {
			if err := addSource(c.Name, c.Source()); err != nil {
				return err
			}
		}
		return nil
	}
	if want["kocher"] {
		if err := addCases(testcases.Kocher()); err != nil {
			return nil, err
		}
	}
	if want["v1"] {
		if err := addCases(testcases.SpecOnlyV1()); err != nil {
			return nil, err
		}
	}
	if want["v11"] {
		if err := addCases(testcases.V11()); err != nil {
			return nil, err
		}
	}
	if want["gallery"] {
		for _, f := range spectre.Gallery() {
			prog := f.Program()
			wire, err := json.Marshal(prog)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", f.ID, err)
			}
			body, err := json.Marshal(serve.AnalyzeRequest{Program: wire})
			if err != nil {
				return nil, err
			}
			out = append(out, corpusCase{name: f.ID, prog: prog, body: body})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("corpus %q selected no cases (known: kocher, v1, v11, gallery)", sets)
	}
	return out, nil
}

// passResult summarizes one replay pass.
type passResult struct {
	Pass          int     `json:"pass"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	Retries       int     `json:"retries"`
	Mismatches    int     `json:"mismatches"`
	CacheHits     int     `json:"cacheHits"`
	Coalesced     int     `json:"coalesced"`
	HitRate       float64 `json:"hitRate"`
	DurationMS    float64 `json:"durationMS"`
	ThroughputRPS float64 `json:"throughputRPS"`
	P50MS         float64 `json:"p50MS"`
	P90MS         float64 `json:"p90MS"`
	P99MS         float64 `json:"p99MS"`
}

type summary struct {
	Corpus int                  `json:"corpus"`
	Passes []passResult         `json:"passes"`
	Stats  *serve.StatsResponse `json:"stats,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8321", "spectred base URL")
	conc := flag.Int("c", 8, "concurrent requests")
	passes := flag.Int("passes", 2, "replay passes over the corpus")
	sets := flag.String("corpus", "kocher,v1,v11,gallery", "comma-separated corpora to replay")
	verify := flag.Bool("verify", false, "check every verdict byte-for-byte against the in-process library path")
	retries := flag.Int("retry", 0, "retry budget per request: extra attempts on 429/5xx with jittered backoff honoring Retry-After (0 disables)")
	minHitRate := flag.Float64("min-hitrate", 0, "fail unless the final pass's hit rate reaches this")
	wait := flag.Duration("wait", 10*time.Second, "how long to wait for the daemon's /healthz")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("specload: ")

	cases, err := buildCorpus(*sets)
	if err != nil {
		log.Fatal(err)
	}
	if err := waitHealthy(*addr, *wait); err != nil {
		log.Fatal(err)
	}

	// The reference verdicts, computed in-process with the same default
	// configuration the daemon resolves for config-less requests.
	var want map[string][]byte
	if *verify {
		an, err := spectre.New()
		if err != nil {
			log.Fatal(err)
		}
		want = make(map[string][]byte, len(cases))
		for _, c := range cases {
			rep, err := an.Run(context.Background(), c.prog)
			if err != nil {
				log.Fatalf("%s: library run: %v", c.name, err)
			}
			raw, err := json.Marshal(rep)
			if err != nil {
				log.Fatal(err)
			}
			want[c.name] = raw
		}
	}

	sum := summary{Corpus: len(cases)}
	failed := false
	for pass := 1; pass <= *passes; pass++ {
		res := runPass(pass, *addr, *conc, *retries, cases, want)
		sum.Passes = append(sum.Passes, res)
		if res.Errors > 0 || res.Mismatches > 0 {
			failed = true
		}
		if !*jsonOut {
			printPass(res)
		}
	}
	if stats, err := fetchStats(*addr); err == nil {
		sum.Stats = stats
		if !*jsonOut {
			printStats(stats)
		}
	}

	final := sum.Passes[len(sum.Passes)-1]
	if final.HitRate < *minHitRate {
		log.Printf("FAIL: final-pass hit rate %.2f < required %.2f", final.HitRate, *minHitRate)
		failed = true
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(&sum) //nolint:errcheck // stdout
	}
	if failed {
		os.Exit(1)
	}
}

func runPass(pass int, addr string, conc, retries int, cases []corpusCase, want map[string][]byte) passResult {
	res := passResult{Pass: pass, Requests: len(cases)}
	latencies := make([]time.Duration, len(cases))
	var mu sync.Mutex // guards the error/hit counters
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for i, c := range cases {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			env, retried, err := postAnalyze(addr, c.body, retries)
			latencies[i] = time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			res.Retries += retried
			if err != nil {
				log.Printf("pass %d %s: %v", pass, c.name, err)
				res.Errors++
				return
			}
			if env.Report.CacheHit {
				res.CacheHits++
			}
			if env.Report.Coalesced {
				res.Coalesced++
			}
			if want != nil {
				env.Report.SchemaVersion = ""
				env.Report.CacheHit = false
				env.Report.Coalesced = false
				got, _ := json.Marshal(env.Report)
				if !bytes.Equal(got, want[c.name]) {
					log.Printf("pass %d %s: verdict diverged from the library path", pass, c.name)
					res.Mismatches++
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res.HitRate = float64(res.CacheHits+res.Coalesced) / float64(len(cases))
	res.DurationMS = float64(elapsed.Microseconds()) / 1000
	res.ThroughputRPS = float64(len(cases)) / elapsed.Seconds()
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx].Microseconds()) / 1000
	}
	res.P50MS, res.P90MS, res.P99MS = pct(0.50), pct(0.90), pct(0.99)
	return res
}

// postAnalyze submits one request with a retry budget of maxRetries
// extra attempts. Transport failures and retryable statuses (429, 500,
// 502, 503, 504) back off exponentially with full jitter, honoring the
// server's Retry-After header when it names a longer wait; anything
// else fails immediately. Returns how many retries were spent.
func postAnalyze(addr string, body []byte, maxRetries int) (*serve.AnalyzeResponse, int, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		env, retryAfter, retryable, err := postOnce(addr, body)
		if err == nil {
			return env, attempt, nil
		}
		lastErr = err
		if !retryable || attempt >= maxRetries {
			return nil, attempt, lastErr
		}
		time.Sleep(backoff(attempt, retryAfter))
	}
}

// backoff computes the sleep before retry number attempt (0-based):
// exponential from 50ms capped at 2s, floored by the server's
// Retry-After when present, with full jitter (uniform over the upper
// half of the window) so a burst of rejected clients doesn't
// re-synchronize into the next burst.
func backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := 50 * time.Millisecond << min(attempt, 5)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d/2 + rand.N(d/2+1)
}

func postOnce(addr string, body []byte) (env *serve.AnalyzeResponse, retryAfter time.Duration, retryable bool, err error) {
	resp, err := http.Post(addr+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, true, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, true, err
	}
	if resp.StatusCode != http.StatusOK {
		switch resp.StatusCode {
		case http.StatusTooManyRequests, http.StatusInternalServerError,
			http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			retryable = true
			if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, retryAfter, retryable, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var e serve.AnalyzeResponse
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, 0, false, err
	}
	if e.Report == nil {
		return nil, 0, false, fmt.Errorf("response carries no report")
	}
	return &e, 0, false, nil
}

func waitHealthy(addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not healthy after %s: %v", addr, budget, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fetchStats(addr string) (*serve.StatsResponse, error) {
	resp, err := http.Get(addr + "/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var stats serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return nil, err
	}
	return &stats, nil
}

func printPass(r passResult) {
	verdicts := ""
	if r.Mismatches > 0 {
		verdicts = fmt.Sprintf("  MISMATCHES %d", r.Mismatches)
	}
	retries := ""
	if r.Retries > 0 {
		retries = fmt.Sprintf("  retries %d", r.Retries)
	}
	fmt.Printf("pass %d: %d requests in %.0fms  %.1f req/s  hit rate %.2f (%d cached, %d coalesced)  p50 %.1fms  p90 %.1fms  p99 %.1fms  errors %d%s%s\n",
		r.Pass, r.Requests, r.DurationMS, r.ThroughputRPS, r.HitRate,
		r.CacheHits, r.Coalesced, r.P50MS, r.P90MS, r.P99MS, r.Errors, retries, verdicts)
}

func printStats(s *serve.StatsResponse) {
	fmt.Printf("statsz: %d requests (%d analyze, %d repair)  %d analyses  hits %d mem / %d disk  %d coalesced  %d rejected  %d errors  hit rate %.2f\n",
		s.Requests, s.AnalyzeRequests, s.RepairRequests, s.Analyses,
		s.MemHits, s.DiskHits, s.Coalesced, s.Rejected, s.Errors, s.CacheHitRate)
	if s.Panics+s.Quarantined+s.GCEvictions+s.InjectedFaults > 0 || s.DiskDegraded {
		fmt.Printf("statsz: fault tolerance: %d panics  %d quarantined  %d gc evictions  %d disk bytes  degraded=%t  %d injected faults\n",
			s.Panics, s.Quarantined, s.GCEvictions, s.DiskBytes, s.DiskDegraded, s.InjectedFaults)
	}
}
