// Package pitchfork is a from-scratch Go implementation of
// "Constant-Time Foundations for the New Spectre Era" (Cauligi et al.,
// PLDI 2020): the speculative out-of-order semantics, the speculative
// constant-time (SCT) security property, and the Pitchfork detector,
// together with every substrate the paper's evaluation relies on.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The root package holds only the repository-level benchmark
// harness (bench_test.go); the implementation lives under internal/.
package pitchfork
