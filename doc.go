// Package pitchfork is a from-scratch Go implementation of
// "Constant-Time Foundations for the New Spectre Era" (Cauligi et al.,
// PLDI 2020): the speculative out-of-order semantics, the speculative
// constant-time (SCT) security property, and the Pitchfork detector,
// together with every substrate the paper's evaluation relies on.
//
// The supported API surface is the spectre package (pitchfork/spectre):
// a ProgramBuilder, an Analyzer with functional options and streaming,
// context-aware analysis, a stable JSON report schema, and automatic
// fence repair (Repair/RepairAll). See README.md for the tour and
// quickstart. The implementation lives under internal/; the root
// package holds only the repository-level benchmark harness
// (bench_test.go).
package pitchfork
