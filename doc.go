// Package pitchfork is a from-scratch Go implementation of
// "Constant-Time Foundations for the New Spectre Era" (Cauligi et al.,
// PLDI 2020): the speculative out-of-order semantics, the speculative
// constant-time (SCT) security property, and the Pitchfork detector,
// together with every substrate the paper's evaluation relies on.
//
// # Architecture: one engine, two domains
//
// Detection is organized around a single domain-parameterized
// speculation engine (internal/sched): the paper's worst-case schedule
// strategy DT(n) (§4.1), a serial and a work-stealing parallel driver,
// a bounded fingerprint-dedup table, exploration budgets, streaming
// violation callbacks, and a deterministic schedule-order merge. The
// engine drives any implementation of its Machine interface — a value
// domain that applies single attacker directives and reports its
// reorder-buffer shape:
//
//	┌────────────────────────┐      ┌────────────────────────────┐
//	│ internal/taint         │      │  internal/sched (engine)   │
//	│ static taint pass:     │─────▶│  DT(n) strategy · workers  │
//	│ certify · PruneHints   │      │  dedup · budgets · merge   │
//	└───────────┬────────────┘      └─────────┬───────┬──────────┘
//	            │                    Machine  │       │  Machine
//	            │             ┌───────────────┘       └───────────────┐
//	            │  ┌──────────┴────────────┐          ┌───────────────┴─────────┐
//	            │  │ concrete domain       │          │ symbolic domain         │
//	            │  │ internal/core + mem   │          │ internal/pitchfork over │
//	            │  │ (labeled words, §3)   │          │ internal/symx (exprs,   │
//	            │  │                       │          │ path conditions, §4.2)  │
//	            │  └──────────┬────────────┘          └───────────────┬─────────┘
//	            │             └───────────────┬───────────────────────┘
//	            │                   ┌─────────┴──────────┐
//	            └──────────────────▶│  spectre (façade)  │
//	              certificates ·    │  Analyzer · Repair │
//	              repair ranking    └────────────────────┘
//
// Because both domains share the engine, every scaling feature —
// WithWorkers parallelism, WithDedup state pruning, MaxStates /
// MaxRetired budgets, StopAtFirst, streaming, cancellation, and the
// deterministic report order — applies identically to concrete and
// symbolic analysis, and fence repair re-verifies candidates on the
// same pool in either mode.
//
// The static speculative-taint pre-analysis (internal/taint) sits in
// front of both: a flow-sensitive fixpoint over the speculative CFG
// that either certifies a program free of secret-labeled observations
// in O(|program|) (spectre.WithStaticPass — no explorer is built) or
// hands the engine sound per-point pruning hints (sched.PruneHints)
// that collapse provably-safe speculation forks without changing the
// finding set, and hands repair a suspiciousness ranking over
// candidate fence sites.
//
// The supported API surface is the spectre package (pitchfork/spectre):
// a ProgramBuilder, an Analyzer with functional options and streaming,
// context-aware analysis, a stable JSON report schema, and automatic
// fence repair (Repair/RepairAll). See README.md for the tour and
// quickstart. The implementation lives under internal/; the root
// package holds only the repository-level benchmark harness
// (bench_test.go) and the cross-domain differential and determinism
// suites.
package pitchfork
