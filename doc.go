// Package pitchfork is a from-scratch Go implementation of
// "Constant-Time Foundations for the New Spectre Era" (Cauligi et al.,
// PLDI 2020): the speculative out-of-order semantics, the speculative
// constant-time (SCT) security property, and the Pitchfork detector,
// together with every substrate the paper's evaluation relies on.
//
// # Architecture: one engine, two domains
//
// Detection is organized around a single domain-parameterized
// speculation engine (internal/sched): the paper's worst-case schedule
// strategy DT(n) (§4.1), a serial and a work-stealing parallel driver,
// a bounded fingerprint-dedup table, exploration budgets, streaming
// violation callbacks, and a deterministic schedule-order merge. The
// engine drives any implementation of its Machine interface — a value
// domain that applies single attacker directives and reports its
// reorder-buffer shape:
//
//	┌────────────────────────┐      ┌────────────────────────────┐
//	│ internal/taint         │      │  internal/sched (engine)   │
//	│ static taint pass:     │─────▶│  DT(n) strategy · workers  │
//	│ certify · PruneHints   │      │  dedup · budgets · merge   │
//	└───────────┬────────────┘      └─────────┬───────┬──────────┘
//	            │                    Machine  │       │  Machine
//	            │             ┌───────────────┘       └───────────────┐
//	            │  ┌──────────┴────────────┐          ┌───────────────┴─────────┐
//	            │  │ concrete domain       │          │ symbolic domain         │
//	            │  │ internal/core + mem   │          │ internal/pitchfork over │
//	            │  │ (labeled words, §3)   │          │ internal/symx (exprs,   │
//	            │  │                       │          │ path conditions, §4.2)  │
//	            │  └──────────┬────────────┘          └───────────────┬─────────┘
//	            │             └───────────────┬───────────────────────┘
//	            │                   ┌─────────┴──────────┐       ┌──────────────────────────┐
//	            └──────────────────▶│  spectre (façade)  │◀──────│ internal/repair          │
//	              certificates ·    │  Analyzer · Repair │       │ mitigation portfolio:    │
//	              repair ranking    └─────────┬──────────┘       │ fence · mask · ret over  │
//	                                          │                  │ internal/isa patch plans │
//	                                          ▼                  └──────────────────────────┘
//	                                ┌─────────────────────────────────┐
//	                                │ internal/serve (service layer)  │
//	                                │ verdict cache (LRU + disk) ·    │
//	                                │ coalescing · bounded pool       │
//	                                │ cmd/spectred · cmd/specload     │
//	                                └─────────────────────────────────┘
//
// Because both domains share the engine, every scaling feature —
// WithWorkers parallelism, WithDedup state pruning, MaxStates /
// MaxRetired budgets, StopAtFirst, streaming, cancellation, and the
// deterministic report order — applies identically to concrete and
// symbolic analysis, and repair re-verifies candidate patches on the
// same pool in either mode.
//
// Mitigation is a portfolio over one rewriting layer: internal/isa
// patch plans (insert/replace with full address remapping) carry
// three strategies in internal/repair — the paper's §3.6 fences,
// SLH-style load masking, and Figure 13 retpolines for flagged
// returns. The mask strategy follows the classic SLH register
// convention: mem.RMSK (address 0xFFFD) holds the all-ones/all-zeros
// speculation predicate updated branchlessly on each conditional
// edge, and mem.RTMP (0xFFFF) is the reserved rewriter scratch
// register — programs already reading either are refused rather than
// silently miscompiled. The default auto strategy certifies each
// candidate patch and keeps the cheapest by estimated sequential
// cost (instructions retired on the architectural path).
//
// The static speculative-taint pre-analysis (internal/taint) sits in
// front of both: a flow-sensitive fixpoint over the speculative CFG
// that either certifies a program free of secret-labeled observations
// in O(|program|) (spectre.WithStaticPass — no explorer is built) or
// hands the engine sound per-point pruning hints (sched.PruneHints)
// that collapse provably-safe speculation forks without changing the
// finding set, and hands repair a suspiciousness ranking over
// candidate fence sites.
//
// The supported API surface is the spectre package (pitchfork/spectre):
// a ProgramBuilder, an Analyzer with functional options and streaming,
// context-aware analysis, a stable JSON report schema, and automatic
// portfolio repair (Repair/RepairAll). The service layer
// (internal/serve behind cmd/spectred) exposes the same façade over
// HTTP for CI-shaped repeat traffic: verdicts cached under
// (Program.Fingerprint, Config.CacheKey) in a memory LRU plus a
// restart-surviving disk tier, in-flight coalescing of identical
// submissions, and queue backpressure; cmd/specload replays the
// detection corpora against it. See README.md for the tour and
// quickstart. The implementation lives under internal/; the root
// package holds only the repository-level benchmark harness
// (bench_test.go) and the cross-domain differential and determinism
// suites.
package pitchfork
