// Determinism of the parallel explorer on the paper's §4.2 corpus:
// work-stealing changes which goroutine visits which subtree, but the
// explored tree — and therefore the violation multiset — must be
// exactly the serial one, and the merged report order must be stable.
package pitchfork_test

import (
	"runtime"
	"sort"
	"testing"

	"pitchfork/internal/sched"
	"pitchfork/internal/testcases"
)

func violationStrings(res sched.Result) []string {
	out := make([]string, len(res.Violations))
	for i, v := range res.Violations {
		out[i] = v.String() + "|" + v.Schedule.String()
	}
	sort.Strings(out)
	return out
}

func TestParallelMatchesSerialOnKocherSuite(t *testing.T) {
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	for _, c := range testcases.Kocher() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			m, err := c.Build()
			if err != nil {
				t.Fatal(err)
			}
			se, err := sched.NewExplorer(sched.Options{Bound: 20, ForwardHazards: c.NeedsFwdHazards, KeepSchedules: true})
			if err != nil {
				t.Fatal(err)
			}
			serial := se.Explore(m)

			m2, err := c.Build()
			if err != nil {
				t.Fatal(err)
			}
			pe, err := sched.NewExplorer(sched.Options{
				Bound: 20, ForwardHazards: c.NeedsFwdHazards,
				KeepSchedules: true, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			par := pe.Explore(m2)

			if serial.States != par.States || serial.Paths != par.Paths {
				t.Fatalf("serial %d states / %d paths, parallel %d states / %d paths",
					serial.States, serial.Paths, par.States, par.Paths)
			}
			ss, ps := violationStrings(serial), violationStrings(par)
			if len(ss) != len(ps) {
				t.Fatalf("violation counts differ: serial %d, parallel %d", len(ss), len(ps))
			}
			for i := range ss {
				if ss[i] != ps[i] {
					t.Fatalf("violation sets differ at %d:\n serial   %s\n parallel %s", i, ss[i], ps[i])
				}
			}
		})
	}
}
